//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements exactly the surface the workspace's `benches/` use — benchmark
//! groups, [`BenchmarkId`], `bench_with_input`, [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros — with the same call
//! signatures as criterion 0.5, so the bench sources compile unchanged
//! against either this or the real crate.
//!
//! Divergence from the real crate (see `vendor/README.md`): each sample is a
//! single timed iteration and the report prints min/median/mean only — no
//! statistical analysis, outlier rejection, HTML reports, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// An identity function that hides a value from the optimizer, so benchmark
/// bodies are not dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: hands out benchmark groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input and prints its timing line.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            routine(&mut b, input);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters.min(u32::MAX as u64) as u32);
            }
        }
        samples.sort();
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return self;
        }
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing handle passed to each benchmark routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine` (the real crate runs many iterations
    /// per sample; the stand-in's sample is a single iteration).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Collects benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_routine_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        let mut calls = 0u32;
        group.sample_size(5).bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            calls += 1;
            b.iter(|| x * 2);
        });
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn benchmark_id_displays_function_and_parameter() {
        assert_eq!(BenchmarkId::new("active_set", 1024).to_string(), "active_set/1024");
    }

    #[test]
    fn group_macro_expands() {
        fn routine(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.sample_size(1).bench_with_input(BenchmarkId::new("x", 0), &(), |b, ()| b.iter(|| 1));
            g.finish();
        }
        criterion_group!(benches, routine);
        benches();
    }
}
