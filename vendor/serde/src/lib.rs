//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from the
//! vendored [`serde_derive`] so that `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` compile unchanged. No trait
//! machinery is provided because nothing in this workspace consumes serde
//! impls through bounds; see `vendor/README.md` for the swap-back path.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
