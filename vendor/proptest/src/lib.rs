//! Offline stand-in for `proptest`: a seeded random-case test runner with the
//! macro surface this workspace uses (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, range and tuple strategies,
//! `prop_map`).
//!
//! Differences from the real crate: cases are drawn from a fixed-seed ChaCha8
//! stream (fully deterministic across runs) and failing cases are **not
//! shrunk** — the failure message reports the case number instead. The
//! strategy/assert API matches, so swapping the real `proptest` back in
//! requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::ops::Range;

use rand_chacha::ChaCha8Rng;

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case, produced by the `prop_assert_*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of the real macro this workspace uses: an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in strategy, ...)`
/// items carrying arbitrary attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = <$crate::__rng::ChaCha8Rng as $crate::__rng::SeedableRng>::seed_from_u64(
                    0x70726f_70746573u64,
                );
                for case in 0..config.cases {
                    let outcome: $crate::TestCaseResult = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}: {}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left != right,
                    "assertion failed: {} != {} (both are {:?})",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
pub mod __rng {
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3u32..10, x in 0u64..100, p in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&p));
        }

        #[test]
        fn prop_map_applies((a, b) in (1u32..5, 1u32..5).prop_map(|(a, b)| (a * 2, b * 3))) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_eq!(b % 3, 0);
            prop_assert_ne!(a, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
