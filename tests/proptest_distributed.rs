//! Property-based integration tests: on arbitrary seeded random weighted
//! graphs, the distributed algorithms agree with the sequential references
//! and respect the model's accounting invariants.

use congest_sssp_suite::graph::{generators, sequential, Graph, NodeId};
use congest_sssp_suite::sssp::cssp::cssp;
use congest_sssp_suite::sssp::energy::low_energy_bfs;
use congest_sssp_suite::sssp::{bfs, AlgoConfig};
use proptest::prelude::*;

fn arbitrary_weighted_graph() -> impl Strategy<Value = (Graph, NodeId)> {
    (3u32..40, 0u64..80, 0u64..10_000, 1u64..32).prop_map(|(n, extra, seed, max_w)| {
        let g = generators::random_connected(n, extra, seed);
        let g = generators::with_random_weights(&g, max_w, seed ^ 0xfeed);
        (g, NodeId((seed % n as u64) as u32))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's recursive CSSP is exact on arbitrary weighted inputs.
    #[test]
    fn recursive_cssp_is_exact((g, src) in arbitrary_weighted_graph()) {
        let run = cssp(&g, &[src], &AlgoConfig::default()).unwrap();
        let truth = sequential::dijkstra(&g, &[src]);
        prop_assert_eq!(run.output.distances, truth.distances);
    }

    /// Congestion accounting: the sum of per-edge congestion equals the total
    /// message count, and congestion on every edge is at least 0 (trivially)
    /// and bounded by the total.
    #[test]
    fn congestion_accounting_is_consistent((g, src) in arbitrary_weighted_graph()) {
        let run = cssp(&g, &[src], &AlgoConfig::default()).unwrap();
        let sum: u64 = run.metrics.edge_congestion.iter().sum();
        prop_assert_eq!(sum, run.metrics.messages);
        prop_assert!(run.metrics.max_congestion() <= run.metrics.messages);
    }

    /// The distributed BFS protocol agrees with sequential BFS and its energy
    /// equals its round count for every node that exists from start to end.
    #[test]
    fn distributed_bfs_is_exact((g, src) in arbitrary_weighted_graph()) {
        let run = bfs::bfs(&g, &[src], &AlgoConfig::default()).unwrap();
        let truth = sequential::bfs(&g, &[src]);
        prop_assert_eq!(&run.output.distances, &truth.distances);
        prop_assert!(run.metrics.max_energy() <= run.metrics.rounds);
    }

    /// The low-energy BFS computes the same distances as the always-awake BFS
    /// and never reports more awake rounds than the total round count.
    #[test]
    fn low_energy_bfs_is_exact((g, src) in arbitrary_weighted_graph()) {
        let limit = g.node_count() as u64;
        let low = low_energy_bfs(&g, &[src], limit, &AlgoConfig::default()).unwrap();
        let truth = sequential::bfs(&g, &[src]);
        prop_assert_eq!(&low.output.distances, &truth.distances);
        prop_assert!(low.metrics.max_energy() <= low.metrics.rounds);
    }

    /// Multi-source CSSP equals the pointwise minimum over single-source runs.
    #[test]
    fn multi_source_is_pointwise_min((g, src) in arbitrary_weighted_graph()) {
        let other = NodeId((src.0 + 1) % g.node_count());
        let cfg = AlgoConfig::default();
        let multi = cssp(&g, &[src, other], &cfg).unwrap();
        let a = cssp(&g, &[src], &cfg).unwrap();
        let b = cssp(&g, &[other], &cfg).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(multi.distance(v), a.distance(v).min(b.distance(v)));
        }
    }
}
