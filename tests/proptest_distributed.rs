//! Property-based integration tests: on arbitrary seeded random weighted
//! graphs, the distributed algorithms — run through the `Solver` facade —
//! agree with the sequential references and respect the model's accounting
//! invariants.

use congest_sssp_suite::graph::{generators, sequential, Graph, NodeId};
use congest_sssp_suite::sssp::{Algorithm, Solver};
use proptest::prelude::*;

fn arbitrary_weighted_graph() -> impl Strategy<Value = (Graph, NodeId)> {
    (3u32..40, 0u64..80, 0u64..10_000, 1u64..32).prop_map(|(n, extra, seed, max_w)| {
        let g = generators::random_connected(n, extra, seed);
        let g = generators::with_random_weights(&g, max_w, seed ^ 0xfeed);
        (g, NodeId((seed % n as u64) as u32))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's recursive CSSP is exact on arbitrary weighted inputs.
    #[test]
    fn recursive_cssp_is_exact((g, src) in arbitrary_weighted_graph()) {
        let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(src).run().unwrap();
        let truth = sequential::dijkstra(&g, &[src]);
        prop_assert_eq!(run.output.distances, truth.distances);
    }

    /// Congestion accounting: the sum of per-edge congestion equals the total
    /// message count, and the unified report agrees with the raw metrics.
    /// (The per-edge vector is not part of the facade's `RunReport`, so this
    /// property reaches below it through the free function.)
    #[test]
    fn congestion_accounting_is_consistent((g, src) in arbitrary_weighted_graph()) {
        let raw = congest_sssp_suite::sssp::cssp::cssp(&g, &[src], &Default::default()).unwrap();
        let sum: u64 = raw.metrics.edge_congestion.iter().sum();
        prop_assert_eq!(sum, raw.metrics.messages);
        let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(src).run().unwrap();
        prop_assert_eq!(run.report.messages, raw.metrics.messages);
        prop_assert_eq!(run.report.max_congestion, raw.metrics.max_congestion());
        prop_assert!(run.report.max_congestion <= run.report.messages);
        prop_assert!(run.report.reached >= 1);
    }

    /// The distributed BFS protocol agrees with sequential BFS and its energy
    /// equals its round count for every node that exists from start to end.
    #[test]
    fn distributed_bfs_is_exact((g, src) in arbitrary_weighted_graph()) {
        let run = Solver::on(&g).algorithm(Algorithm::Bfs).source(src).run().unwrap();
        let truth = sequential::bfs(&g, &[src]);
        prop_assert_eq!(&run.output.distances, &truth.distances);
        prop_assert!(run.report.max_energy <= run.report.rounds);
    }

    /// The low-energy BFS computes the same distances as the always-awake BFS
    /// and never reports more awake rounds than the total round count.
    #[test]
    fn low_energy_bfs_is_exact((g, src) in arbitrary_weighted_graph()) {
        let low = Solver::on(&g).algorithm(Algorithm::LowEnergyBfs).source(src).run().unwrap();
        let truth = sequential::bfs(&g, &[src]);
        prop_assert_eq!(&low.output.distances, &truth.distances);
        prop_assert!(low.report.max_energy <= low.report.rounds);
        prop_assert!(low.report.sleeping.is_some());
    }

    /// Multi-source CSSP equals the pointwise minimum over single-source runs.
    #[test]
    fn multi_source_is_pointwise_min((g, src) in arbitrary_weighted_graph()) {
        let other = NodeId((src.0 + 1) % g.node_count());
        let solve = |sources: &[NodeId]| {
            Solver::on(&g).algorithm(Algorithm::Cssp).sources(sources).run().unwrap()
        };
        let multi = solve(&[src, other]);
        let a = solve(&[src]);
        let b = solve(&[other]);
        for v in g.nodes() {
            prop_assert_eq!(multi.distance(v), a.distance(v).min(b.distance(v)));
        }
    }
}
