//! Property tests for the distance-oracle query service: on random and
//! adversarial workloads, every point-to-point answer must respect the
//! oracle's contracts — never below the true distance, within the proven
//! stretch bound on the cover path, exactly the true distance below the
//! fallback threshold, and byte-identical however the query batch is
//! sharded across threads.

use congest_sssp_suite::graph::{generators, sequential, Distance, Graph, NodeId};
use congest_sssp_suite::sssp::apsp::ApspConfig;
use congest_sssp_suite::sssp::{build_oracle, AlgoConfig, OracleConfig};
use proptest::prelude::*;

/// Small connected-ish workloads of three shapes: random graphs plus the
/// broom and barbell adversaries (long handles stress the level doubling,
/// dense lobes stress cluster membership).
fn workload() -> impl Strategy<Value = Graph> {
    (4u32..20, 0u64..16, 0u64..10_000, 1u64..24, 0usize..3).prop_map(
        |(n, extra, seed, max_w, shape)| {
            let base = match shape {
                0 => generators::random_connected(n, extra, seed),
                1 => generators::broom(n / 2 + 1, n / 2 + 1, 1),
                _ => generators::barbell(n / 2 + 2, n % 3, 1),
            };
            generators::with_random_weights(&base, max_w, seed ^ 0xd1ff)
        },
    )
}

/// Builds the oracle on the cover path regardless of graph size.
fn cover_oracle(g: &Graph) -> congest_sssp_suite::sssp::OracleBuild {
    build_oracle(
        g,
        &AlgoConfig::default(),
        &OracleConfig::default().with_fallback_threshold(0),
        &ApspConfig::default(),
    )
    .expect("oracle build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The cover-path oracle never underestimates, stays within its proven
    /// stretch bound, and agrees with the truth on reachability — on every
    /// pair, not a sample.
    #[test]
    fn cover_path_queries_stay_within_the_stretch_bound(g in workload()) {
        let build = cover_oracle(&g);
        prop_assert!(!build.oracle.is_exact());
        let s = build.report.stretch_bound;
        prop_assert!(s >= 1);
        let truth = sequential::all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let est = build.oracle.query(u, v);
                let t = truth[u.index()][v.index()];
                match (est.finite(), t.finite()) {
                    (Some(est), Some(t)) => prop_assert!(
                        t <= est && est <= t * s,
                        "({u},{v}): estimate {est} vs truth {t} (stretch bound {s})"
                    ),
                    (e, t) => prop_assert!(
                        e.is_none() && t.is_none(),
                        "({u},{v}): reachability disagrees with the truth"
                    ),
                }
            }
        }
    }

    /// Below the fallback threshold the oracle is the exact all-pairs matrix:
    /// every query answer equals the sequential truth.
    #[test]
    fn fallback_oracle_answers_exactly(g in workload()) {
        let build = build_oracle(
            &g,
            &AlgoConfig::default(),
            &OracleConfig::default(), // every workload here sits below the default threshold
            &ApspConfig::default(),
        ).expect("oracle build");
        prop_assert!(build.oracle.is_exact());
        prop_assert_eq!(build.report.stretch_bound, 1);
        let truth = sequential::all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(build.oracle.query(u, v), truth[u.index()][v.index()]);
            }
        }
    }

    /// Batch answers are byte-identical at every thread count and equal to
    /// the one-by-one `query` path: sharding is an execution strategy, not a
    /// semantic knob.
    #[test]
    fn batch_queries_are_identical_across_thread_counts(g in workload()) {
        let build = cover_oracle(&g);
        let pairs: Vec<(NodeId, NodeId)> =
            g.nodes().flat_map(|u| g.nodes().map(move |v| (u, v))).collect();
        let mut baseline = vec![Distance::Infinite; pairs.len()];
        build.oracle.query_into(&pairs, &mut baseline, 1);
        for (&(u, v), &d) in pairs.iter().zip(&baseline) {
            prop_assert_eq!(d, build.oracle.query(u, v), "({}, {})", u, v);
        }
        for threads in [2usize, 4] {
            let mut out = vec![Distance::Infinite; pairs.len()];
            build.oracle.query_into(&pairs, &mut out, threads);
            prop_assert_eq!(&out, &baseline, "{} threads diverged", threads);
        }
    }
}
