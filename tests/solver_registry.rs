//! Registry-driven differential tests: the capability flags of
//! `congest_sssp::registry()` are load-bearing — every algorithm that
//! *claims* exact weighted distances must agree with the Dijkstra reference
//! on random connected graphs, whatever its execution model (always-awake,
//! sleeping, or the all-pairs composition). A solver added to the registry
//! is picked up here automatically.

use congest_sssp_suite::graph::{generators, sequential, Graph, NodeId};
use congest_sssp_suite::sssp::{registry, Solver};
use proptest::prelude::*;

/// Small graphs: the all-pairs entry runs one SSSP instance per node. The
/// mix alternates random connected graphs with the adversarial killer
/// families of `generators` (see `docs/SEQ_BASELINES.md`), so every registry
/// entrant is exercised on the workloads built to break heap disciplines and
/// relaxation orders, not just on benign random topologies.
fn small_weighted_graph() -> impl Strategy<Value = (Graph, NodeId)> {
    (3u32..16, 0u64..20, 0u64..10_000, 1u64..24, 0usize..6).prop_map(
        |(n, extra, seed, max_w, family)| {
            let g = match family {
                0 => generators::wrong_dijkstra_killer(n.max(4)),
                1 => generators::spfa_killer(n.max(2)),
                2 => generators::grid_swirl(2 + n % 4),
                3 => generators::almost_line(16 + n, seed),
                4 => generators::max_dense(n.max(3), seed),
                _ => {
                    let g = generators::random_connected(n, extra, seed);
                    generators::with_random_weights(&g, max_w, seed ^ 0xd1ff)
                }
            };
            let n = g.node_count();
            (g, NodeId((seed % n as u64) as u32))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every algorithm whose registry entry claims exact weighted distances
    /// agrees with the Dijkstra baseline.
    #[test]
    fn exact_weighted_algorithms_agree_with_dijkstra((g, src) in small_weighted_graph()) {
        let truth = sequential::dijkstra(&g, &[src]);
        for info in registry().iter().filter(|i| i.weighted && i.exact()) {
            let run = Solver::on(&g).algorithm(info.algorithm).source(src).run().unwrap();
            prop_assert_eq!(
                &run.output.distances, &truth.distances,
                "algorithm {} diverged from Dijkstra", info.name
            );
            // The unified report is consistent with the output.
            prop_assert_eq!(
                run.report.reached,
                run.output.reached_count() as u64,
                "algorithm {}", info.name
            );
            // All-pairs entries also expose the full matrix; its row for the
            // requested source must be the reported output.
            if info.all_pairs {
                let matrix = run.all_pairs.as_ref().expect("all-pairs matrix");
                prop_assert_eq!(&matrix[src.index()], &run.output.distances);
                let full_truth = sequential::all_pairs(&g);
                prop_assert_eq!(matrix, &full_truth, "algorithm {}", info.name);
            } else {
                prop_assert!(run.all_pairs.is_none());
            }
        }
    }

    /// Approximate algorithms stay within their self-reported error bound
    /// and never drop a node that exact algorithms reach within the
    /// untruncated threshold.
    #[test]
    fn approximate_algorithms_respect_their_error_bound((g, src) in small_weighted_graph()) {
        let truth = sequential::dijkstra(&g, &[src]);
        for info in registry().iter().filter(|i| i.weighted && i.approximate) {
            let run = Solver::on(&g).algorithm(info.algorithm).source(src).run().unwrap();
            let bound = run.report.error_bound.expect("approximate solvers report a bound");
            for v in g.nodes() {
                let est = run.distance(v);
                let t = truth.distance(v);
                if let (Some(est), Some(t)) = (est.finite(), t.finite()) {
                    prop_assert!(
                        t <= est && est <= t + bound,
                        "algorithm {}: node {} estimate {} vs truth {} (+{})",
                        info.name, v, est, t, bound
                    );
                }
            }
        }
    }
}
