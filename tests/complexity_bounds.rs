//! Integration tests for the complexity *shapes* the paper claims: polylog
//! congestion for the recursive CSSP, polylog participation, polylog energy
//! growth for the sleeping-model algorithms, and the APSP scheduling gain.
//! All runs go through the `Solver` facade and read the unified `RunReport`;
//! only the last test reaches below it for the raw per-edge/per-node
//! `Metrics` vectors.

use congest_sssp_suite::graph::{generators, NodeId};
use congest_sssp_suite::sssp::apsp::ApspConfig;
use congest_sssp_suite::sssp::cssp::cssp;
use congest_sssp_suite::sssp::{AlgoConfig, Algorithm, RunReport, Solver};

fn log2(n: u32) -> f64 {
    (n.max(2) as f64).log2()
}

fn solve(g: &congest_sssp_suite::graph::Graph, algorithm: Algorithm, src: NodeId) -> RunReport {
    Solver::on(g).algorithm(algorithm).source(src).run().unwrap().report
}

/// Unit-weight path plus heavy shortcuts from the source: Bellman–Ford
/// estimates improve Θ(n) times.
fn adversarial(n: u32) -> congest_sssp_suite::graph::Graph {
    let mut b = congest_sssp_suite::graph::Graph::builder(n);
    for i in 0..n - 1 {
        b.add_edge(i, i + 1, 1).unwrap();
    }
    for i in 2..n {
        b.add_edge(0, i, 2 * i as u64).unwrap();
    }
    b.build()
}

#[test]
fn cssp_congestion_is_polylog_while_bellman_ford_is_linear_on_adversarial_graphs() {
    let small = adversarial(64);
    let large = adversarial(192);
    let paper_small = solve(&small, Algorithm::Cssp, NodeId(0));
    let paper_large = solve(&large, Algorithm::Cssp, NodeId(0));
    let bf_small = solve(&small, Algorithm::BellmanFord, NodeId(0));
    let bf_large = solve(&large, Algorithm::BellmanFord, NodeId(0));
    // Bellman–Ford's congestion tracks n (×3 here); the recursion's tracks
    // log n · log D and grows far slower.
    assert!(
        bf_large.max_congestion as f64 > 0.5 * 192.0,
        "Bellman–Ford congestion {} should be Θ(n)",
        bf_large.max_congestion
    );
    let bf_growth = bf_large.max_congestion as f64 / bf_small.max_congestion as f64;
    let paper_growth = paper_large.max_congestion as f64 / paper_small.max_congestion as f64;
    assert!(bf_growth > 2.0, "Bellman–Ford congestion grew only {bf_growth}x for 3x nodes");
    assert!(
        paper_growth < bf_growth,
        "recursion congestion growth {paper_growth} must stay below Bellman–Ford's {bf_growth}"
    );
    // And it is polylog: O(log n * log D) with a generous constant.
    let levels = (large.distance_upper_bound() as f64).log2().ceil();
    assert!(
        (paper_large.max_congestion as f64) < 8.0 * log2(192) * levels,
        "congestion {} is not polylogarithmic",
        paper_large.max_congestion
    );
}

#[test]
fn cssp_messages_stay_near_linear_in_m() {
    let g = generators::with_random_weights(&generators::random_connected(128, 256, 3), 16, 3);
    let report = solve(&g, Algorithm::Cssp, NodeId(0));
    let m = g.edge_count() as f64;
    let levels = (g.distance_upper_bound() as f64).log2().ceil();
    assert!(
        (report.messages as f64) < 10.0 * m * levels * log2(g.node_count()),
        "messages {} should be Õ(m)",
        report.messages
    );
}

#[test]
fn node_participation_grows_with_log_d_not_with_n() {
    let small = generators::with_random_weights(&generators::random_connected(32, 64, 1), 8, 1);
    let large = generators::with_random_weights(&generators::random_connected(256, 512, 1), 8, 1);
    let rec_small = solve(&small, Algorithm::Cssp, NodeId(0)).recursion.unwrap();
    let rec_large = solve(&large, Algorithm::Cssp, NodeId(0)).recursion.unwrap();
    // n grew 8x; participation should grow far slower (it tracks log D).
    let growth = rec_large.max_participation as f64 / rec_small.max_participation.max(1) as f64;
    assert!(growth < 4.0, "participation grew {growth}x while n grew 8x");
}

#[test]
fn low_energy_bfs_energy_grows_sublinearly_in_the_diameter() {
    // Over an 8x increase in diameter the always-awake baseline's energy
    // grows ~8x, while the low-energy algorithm's energy tracks only the
    // polylogarithmic cover constants.
    let short = generators::path(128, 1);
    let long = generators::path(1024, 1);
    let low_short = solve(&short, Algorithm::LowEnergyBfs, NodeId(0));
    let low_long = solve(&long, Algorithm::LowEnergyBfs, NodeId(0));
    let naive_short = solve(&short, Algorithm::Bfs, NodeId(0));
    let naive_long = solve(&long, Algorithm::Bfs, NodeId(0));
    let naive_growth = naive_long.max_energy as f64 / naive_short.max_energy as f64;
    let low_growth = low_long.max_energy as f64 / low_short.max_energy as f64;
    assert!(naive_growth > 6.0, "the always-awake baseline tracks D (grew {naive_growth}x)");
    assert!(
        low_growth < 0.75 * naive_growth,
        "low-energy growth {low_growth} must stay well below the baseline's {naive_growth}"
    );
}

#[test]
fn apsp_scheduling_beats_sequential_composition() {
    let g = generators::with_random_weights(&generators::random_connected(28, 70, 2), 10, 2);
    let run = Solver::on(&g)
        .algorithm(Algorithm::Apsp)
        .apsp_config(ApspConfig { seed: 3, ..ApspConfig::default() })
        .run()
        .unwrap();
    let sched = run.report.schedule.unwrap();
    assert!(sched.makespan < sched.sequential_rounds / 2);
    // Per-instance congestion stays small relative to the sequential cost —
    // that is what makes concurrent scheduling possible.
    assert!(sched.max_instance_congestion < sched.sequential_rounds / g.node_count() as u64);
}

#[test]
fn metrics_are_internally_consistent() {
    // The one place this file reaches below the facade: the raw Metrics
    // vectors are not part of the unified report.
    let cfg = AlgoConfig::default();
    let g = generators::with_random_weights(&generators::random_connected(48, 96, 4), 9, 4);
    let run = cssp(&g, &[NodeId(0)], &cfg).unwrap();
    assert_eq!(run.metrics.node_energy.len(), g.node_count() as usize);
    assert_eq!(run.metrics.edge_congestion.len(), g.edge_count() as usize);
    assert_eq!(
        run.metrics.messages,
        run.metrics.edge_congestion.iter().sum::<u64>(),
        "every message is attributed to exactly one edge"
    );
    assert!(run.metrics.rounds > 0);
    assert!(
        run.metrics.max_energy() <= run.metrics.rounds,
        "a node cannot be awake more rounds than exist"
    );
}
