//! Cross-crate integration tests: every distributed algorithm is checked
//! against the sequential ground truth over a matrix of topologies, weight
//! ranges, and seeds.

use congest_sssp_suite::graph::{generators, sequential, Graph, NodeId};
use congest_sssp_suite::sssp::baseline::{distributed_bellman_ford, distributed_dijkstra};
use congest_sssp_suite::sssp::cssp::cssp;
use congest_sssp_suite::sssp::energy::{low_energy_bfs, low_energy_cssp};
use congest_sssp_suite::sssp::{bfs, AlgoConfig};

/// The workload matrix shared by the integration tests.
fn workloads() -> Vec<(String, Graph)> {
    let mut w = vec![
        ("path".into(), generators::path(48, 3)),
        ("cycle".into(), generators::cycle(36, 5)),
        ("star".into(), generators::star(30, 7)),
        ("grid".into(), generators::with_random_weights(&generators::grid(6, 6, 1), 9, 1)),
        ("binary-tree".into(), generators::binary_tree(31, 2)),
        ("barbell".into(), generators::with_random_weights(&generators::barbell(8, 6, 1), 5, 2)),
        ("broom".into(), generators::broom(20, 10, 4)),
    ];
    for seed in 0..3u64 {
        w.push((
            format!("random-{seed}"),
            generators::with_random_weights(&generators::random_connected(40, 80, seed), 12, seed),
        ));
    }
    w.push((
        "disconnected".into(),
        generators::disjoint_copies(&generators::random_connected(16, 24, 5), 3),
    ));
    w
}

#[test]
fn recursive_cssp_matches_dijkstra_on_the_whole_matrix() {
    let cfg = AlgoConfig::default();
    for (name, g) in workloads() {
        let sources = [NodeId(0)];
        let run = cssp(&g, &sources, &cfg).unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances, "workload {name}");
    }
}

#[test]
fn recursive_cssp_matches_dijkstra_with_multiple_sources() {
    let cfg = AlgoConfig::default();
    for (name, g) in workloads() {
        let n = g.node_count();
        let sources = [NodeId(0), NodeId(n / 2), NodeId(n - 1)];
        let run = cssp(&g, &sources, &cfg).unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances, "workload {name}");
    }
}

#[test]
fn baselines_agree_with_the_paper_algorithm() {
    let cfg = AlgoConfig::default();
    for (name, g) in workloads().into_iter().take(6) {
        let sources = [NodeId(1)];
        let paper = cssp(&g, &sources, &cfg).unwrap();
        let bf = distributed_bellman_ford(&g, &sources, &cfg).unwrap();
        let dj = distributed_dijkstra(&g, &sources, &cfg).unwrap();
        assert_eq!(paper.output.distances, bf.output.distances, "workload {name}");
        assert_eq!(paper.output.distances, dj.output.distances, "workload {name}");
    }
}

#[test]
fn low_energy_bfs_agrees_with_always_awake_bfs() {
    let cfg = AlgoConfig::default();
    for (name, g) in workloads().into_iter().take(8) {
        let sources = [NodeId(0)];
        let limit = g.node_count() as u64;
        let low = low_energy_bfs(&g, &sources, limit, &cfg).unwrap();
        let naive = bfs::bfs(&g, &sources, &cfg).unwrap();
        assert_eq!(low.output.distances, naive.output.distances, "workload {name}");
    }
}

#[test]
fn low_energy_cssp_matches_dijkstra_on_weighted_graphs() {
    let cfg = AlgoConfig::default();
    for (name, g) in workloads().into_iter().take(5) {
        let sources = [NodeId(0)];
        let run = low_energy_cssp(&g, &sources, &cfg).unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances, "workload {name}");
    }
}

#[test]
fn zero_weight_graphs_are_handled_end_to_end() {
    let cfg = AlgoConfig::default();
    for seed in 0..3u64 {
        let g = generators::with_random_weights_zero(
            &generators::random_connected(30, 60, seed),
            5,
            seed,
        );
        let sources = [NodeId(0), NodeId(15)];
        let run = cssp(&g, &sources, &cfg).unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances, "seed {seed}");
    }
}
