//! Cross-crate integration tests: every distributed algorithm — reached
//! uniformly through the `Solver` facade and the algorithm registry — is
//! checked against the sequential ground truth over a matrix of topologies,
//! weight ranges, and seeds.

use congest_sssp_suite::graph::{generators, sequential, Graph, NodeId};
use congest_sssp_suite::sssp::cssp::cssp;
use congest_sssp_suite::sssp::{registry, AlgoConfig, Algorithm, Solver};

/// The workload matrix shared by the integration tests.
fn workloads() -> Vec<(String, Graph)> {
    let mut w = vec![
        ("path".into(), generators::path(48, 3)),
        ("cycle".into(), generators::cycle(36, 5)),
        ("star".into(), generators::star(30, 7)),
        ("grid".into(), generators::with_random_weights(&generators::grid(6, 6, 1), 9, 1)),
        ("binary-tree".into(), generators::binary_tree(31, 2)),
        ("barbell".into(), generators::with_random_weights(&generators::barbell(8, 6, 1), 5, 2)),
        ("broom".into(), generators::broom(20, 10, 4)),
    ];
    for seed in 0..3u64 {
        w.push((
            format!("random-{seed}"),
            generators::with_random_weights(&generators::random_connected(40, 80, seed), 12, seed),
        ));
    }
    w.push((
        "disconnected".into(),
        generators::disjoint_copies(&generators::random_connected(16, 24, 5), 3),
    ));
    w
}

#[test]
fn every_exact_weighted_solver_matches_dijkstra_on_the_whole_matrix() {
    // All-pairs solvers are covered separately (and at smaller sizes) by the
    // registry proptest in `tests/solver_registry.rs` — running n SSSP
    // instances per workload here would dominate the suite's runtime.
    for (name, g) in workloads() {
        let sources = [NodeId(0)];
        let truth = sequential::dijkstra(&g, &sources);
        for info in registry().iter().filter(|i| i.weighted && i.exact() && !i.all_pairs) {
            let run = Solver::on(&g).algorithm(info.algorithm).sources(&sources).run().unwrap();
            assert_eq!(
                run.output.distances, truth.distances,
                "workload {name}, algorithm {}",
                info.name
            );
        }
    }
}

#[test]
fn every_exact_weighted_solver_matches_dijkstra_with_multiple_sources() {
    for (name, g) in workloads() {
        let n = g.node_count();
        let sources = [NodeId(0), NodeId(n / 2), NodeId(n - 1)];
        let truth = sequential::dijkstra(&g, &sources);
        for info in registry().iter().filter(|i| i.weighted && i.exact() && i.multi_source) {
            let run = Solver::on(&g).algorithm(info.algorithm).sources(&sources).run().unwrap();
            assert_eq!(
                run.output.distances, truth.distances,
                "workload {name}, algorithm {}",
                info.name
            );
        }
    }
}

#[test]
fn every_bfs_solver_matches_sequential_bfs() {
    for (name, g) in workloads().into_iter().take(8) {
        let sources = [NodeId(0)];
        let truth = sequential::bfs(&g, &sources);
        for info in registry().iter().filter(|i| !i.weighted) {
            let run = Solver::on(&g).algorithm(info.algorithm).sources(&sources).run().unwrap();
            assert_eq!(
                run.output.distances, truth.distances,
                "workload {name}, algorithm {}",
                info.name
            );
        }
    }
}

#[test]
fn free_function_wrappers_agree_with_the_facade() {
    // The per-algorithm free functions remain as thin entry points under the
    // facade; both paths must produce identical outputs and metrics.
    let cfg = AlgoConfig::default();
    for (name, g) in workloads().into_iter().take(4) {
        let sources = [NodeId(1)];
        let direct = cssp(&g, &sources, &cfg).unwrap();
        let facade = Solver::on(&g)
            .algorithm(Algorithm::Cssp)
            .sources(&sources)
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(direct.output, facade.output, "workload {name}");
        assert_eq!(direct.metrics.rounds, facade.report.rounds, "workload {name}");
        assert_eq!(direct.metrics.messages, facade.report.messages, "workload {name}");
        assert_eq!(
            direct.metrics.max_congestion(),
            facade.report.max_congestion,
            "workload {name}"
        );
    }
}

#[test]
fn zero_weight_graphs_are_handled_end_to_end() {
    for seed in 0..3u64 {
        let g = generators::with_random_weights_zero(
            &generators::random_connected(30, 60, seed),
            5,
            seed,
        );
        let sources = [NodeId(0), NodeId(15)];
        let run = Solver::on(&g).algorithm(Algorithm::Cssp).sources(&sources).run().unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances, "seed {seed}");
    }
}
